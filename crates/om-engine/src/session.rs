//! Session persistence: the analyst's dataset plus an append-only log of
//! findings, saved as one binary artifact.
//!
//! Mirrors the deployed workflow: cube generation happens offline
//! (Section V-C), then analysts return to the same prepared data across
//! days. Cubes themselves are cheap to rebuild relative to their size on
//! disk, so a session stores the (discretized or raw) dataset and notes,
//! and [`Session::open_engine`] reconstructs the cubes.

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use om_data::persist::{decode_dataset, encode_dataset};
use om_data::{DataError, Dataset};

use crate::engine::{EngineConfig, EngineError, OpportunityMap};

const MAGIC: &[u8; 4] = b"OMSS";
const VERSION: u8 = 1;

/// A persisted analysis session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The dataset under analysis.
    pub dataset: Dataset,
    /// Free-form analyst notes / findings log, in insertion order.
    pub log: Vec<String>,
}

impl Session {
    /// A new session over a dataset.
    pub fn new(dataset: Dataset) -> Self {
        Self {
            dataset,
            log: Vec::new(),
        }
    }

    /// Append a finding to the log.
    pub fn note(&mut self, entry: impl Into<String>) {
        self.log.push(entry.into());
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let ds = encode_dataset(&self.dataset);
        let mut buf = BytesMut::with_capacity(ds.len() + 64);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(ds.len() as u64);
        buf.put_slice(&ds);
        buf.put_u32_le(self.log.len() as u32);
        for entry in &self.log {
            buf.put_u32_le(entry.len() as u32);
            buf.put_slice(entry.as_bytes());
        }
        buf.freeze()
    }

    /// Deserialize from bytes.
    ///
    /// # Errors
    /// Fails on bad magic/version or truncation.
    pub fn decode(mut buf: Bytes) -> Result<Self, DataError> {
        if buf.remaining() < 5 {
            return Err(DataError::Decode("session payload too short".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DataError::Decode("bad magic (not an OMSS payload)".into()));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(DataError::Decode(format!(
                "unsupported session version {version}"
            )));
        }
        if buf.remaining() < 8 {
            return Err(DataError::Decode("truncated dataset length".into()));
        }
        let ds_len = buf.get_u64_le() as usize;
        if buf.remaining() < ds_len {
            return Err(DataError::Decode("truncated dataset payload".into()));
        }
        let dataset = decode_dataset(buf.copy_to_bytes(ds_len))?;
        if buf.remaining() < 4 {
            return Err(DataError::Decode("truncated log length".into()));
        }
        let n = buf.get_u32_le() as usize;
        let mut log = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 4 {
                return Err(DataError::Decode("truncated log entry length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DataError::Decode("truncated log entry".into()));
            }
            let raw = buf.copy_to_bytes(len);
            log.push(
                String::from_utf8(raw.to_vec())
                    .map_err(|e| DataError::Decode(format!("invalid UTF-8 log entry: {e}")))?,
            );
        }
        Ok(Self { dataset, log })
    }

    /// Save to a file.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), DataError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Load from a file.
    ///
    /// # Errors
    /// Fails on I/O or decode errors.
    pub fn load(path: &Path) -> Result<Self, DataError> {
        let raw = std::fs::read(path)?;
        Self::decode(Bytes::from(raw))
    }

    /// Rebuild the Opportunity Map engine for this session's dataset.
    ///
    /// # Errors
    /// Propagates engine construction failures.
    pub fn open_engine(&self, config: EngineConfig) -> Result<OpportunityMap, EngineError> {
        OpportunityMap::build(self.dataset.clone(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_synth::{generate_call_log, CallLogConfig};

    fn session() -> Session {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 2_000,
            ..CallLogConfig::default()
        });
        let mut s = Session::new(ds);
        s.note("compared ph1 vs ph2 on dropped");
        s.note("TimeOfCall ranked first");
        s
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = session();
        let back = Session::decode(s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn file_round_trip() {
        let s = session();
        let dir = std::env::temp_dir().join("om-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.omss");
        s.save(&path).unwrap();
        let back = Session::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_rejected() {
        let full = session().encode();
        for cut in [0, 3, 4, 5, 12, full.len() - 1] {
            assert!(Session::decode(full.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn engine_reconstructs_from_session() {
        let s = session();
        let om = s.open_engine(EngineConfig::default()).unwrap();
        assert!(om.dataset().all_categorical());
        assert!(om.store().n_pair_cubes() > 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let e = Session::decode(Bytes::from_static(b"WRONG....")).unwrap_err();
        assert!(e.to_string().contains("magic"));
    }
}
