//! Opportunity scan: find the comparisons worth running, automatically.
//!
//! In the deployed workflow the user first *notices* that two values
//! differ (Fig. 6) and then invokes the comparator. This module automates
//! the noticing: for every analysis attribute it finds the pair of
//! sufficiently-supported values with the most significant difference in
//! the target-class confidence (two-proportion z-test), ranks those
//! pairs, and runs the full Section IV comparison on the top ones — a
//! one-call "where should I look?" for a fresh dataset.

use om_compare::{CompareError, Comparator, ComparisonResult, ComparisonSpec};
use om_cube::CubeView;
use om_data::ValueId;
use om_stats::two_proportion_z;

use crate::engine::{EngineError, OpportunityMap};

/// Scan parameters.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Run the full comparison for at most this many top pairs.
    pub max_results: usize,
    /// Minimum records per value for a pair to be considered.
    pub min_sub_population: u64,
    /// Minimum |z| of the pair's confidence difference.
    pub min_z: f64,
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self {
            max_results: 5,
            min_sub_population: 100,
            min_z: 4.0,
        }
    }
}

/// One scan finding: the significant pair plus its full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanFinding {
    pub attr: usize,
    pub attr_name: String,
    pub value_1: ValueId,
    pub value_1_label: String,
    pub value_2: ValueId,
    pub value_2_label: String,
    /// Target-class confidences of the two values.
    pub cf1: f64,
    pub cf2: f64,
    /// z statistic of the difference (always >= 0; orientation is
    /// `cf1 <= cf2`).
    pub z: f64,
    /// The full comparison for this pair.
    pub result: ComparisonResult,
}

impl OpportunityMap {
    /// Scan every attribute for its most significant value pair on
    /// `class`, then run the comparator on the top pairs.
    ///
    /// # Errors
    /// Fails on an unknown class label.
    pub fn scan_opportunities(
        &self,
        class: &str,
        config: &ScanConfig,
    ) -> Result<Vec<ScanFinding>, EngineError> {
        let class_id = self.class_id(class)?;
        // One snapshot for both phases: candidates found in phase 1 are
        // compared in phase 2 against the same store generation.
        let snapshot = self.store();
        // Phase 1: per attribute, the most significant value pair.
        struct Candidate {
            attr: usize,
            v1: ValueId,
            v2: ValueId,
            z: f64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for &attr in snapshot.attrs() {
            let cube = snapshot.one_dim(attr)?;
            let view = CubeView::from_cube(&cube)?;
            let mut best: Option<Candidate> = None;
            let n_values = view.n_values() as u32;
            for a in 0..n_values {
                let na = view.value_total(a);
                if na < config.min_sub_population {
                    continue;
                }
                for b in (a + 1)..n_values {
                    let nb = view.value_total(b);
                    if nb < config.min_sub_population {
                        continue;
                    }
                    let xa = view.count(a, class_id);
                    let xb = view.count(b, class_id);
                    let t = two_proportion_z(xa, na, xb, nb);
                    let z = t.z.abs();
                    if z >= config.min_z
                        && best.as_ref().is_none_or(|c| z > c.z)
                    {
                        // Orient so value_1 has the lower confidence.
                        let (v1, v2) = if t.z <= 0.0 { (a, b) } else { (b, a) };
                        best = Some(Candidate { attr, v1, v2, z });
                    }
                }
            }
            if let Some(c) = best {
                candidates.push(c);
            }
        }
        candidates.sort_by(|a, b| {
            b.z.partial_cmp(&a.z).unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(config.max_results);

        // Phase 2: run the full comparison on each surviving pair.
        let comparator =
            Comparator::with_config(&snapshot, self.config().compare.clone());
        let mut findings = Vec::with_capacity(candidates.len());
        for c in candidates {
            let spec = ComparisonSpec {
                attr: c.attr,
                value_1: c.v1,
                value_2: c.v2,
                class: class_id,
            };
            let result = match comparator.compare(&spec) {
                Ok(r) => r,
                // A pair can fail the comparator's own gates (e.g. zero
                // baseline confidence); skip it rather than abort the scan.
                Err(
                    CompareError::ZeroBaselineConfidence
                    | CompareError::InsufficientSupport { .. },
                ) => continue,
                Err(e) => return Err(e.into()),
            };
            findings.push(ScanFinding {
                attr: c.attr,
                attr_name: result.attr_name.clone(),
                value_1: result.value_1,
                value_1_label: result.value_1_label.clone(),
                value_2: result.value_2,
                value_2_label: result.value_2_label.clone(),
                cf1: result.cf1,
                cf2: result.cf2,
                z: c.z,
                result,
            });
        }
        Ok(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use om_synth::paper_scenario;

    fn engine() -> OpportunityMap {
        let (ds, _) = paper_scenario(60_000, 33);
        OpportunityMap::build(ds, EngineConfig::default()).unwrap()
    }

    #[test]
    fn scan_surfaces_the_phone_difference() {
        let om = engine();
        let findings = om
            .scan_opportunities("dropped", &ScanConfig::default())
            .unwrap();
        assert!(!findings.is_empty());
        // Results sorted by z.
        for w in findings.windows(2) {
            assert!(w[0].z >= w[1].z);
        }
        // The phone-model pair (ph1 vs ph2) must be among the findings,
        // with the full comparison attached and TimeOfCall on top.
        let phone = findings
            .iter()
            .find(|f| f.attr_name == "PhoneModel")
            .expect("phone pair found");
        assert_eq!(phone.value_2_label, "ph2", "{phone:?}");
        assert!(phone.cf1 <= phone.cf2);
        assert_eq!(
            phone.result.top().unwrap().attr_name,
            "TimeOfCall",
            "the attached comparison isolates the cause"
        );
    }

    #[test]
    fn scan_respects_max_results() {
        let om = engine();
        let findings = om
            .scan_opportunities(
                "dropped",
                &ScanConfig {
                    max_results: 2,
                    ..ScanConfig::default()
                },
            )
            .unwrap();
        assert!(findings.len() <= 2);
    }

    #[test]
    fn high_z_floor_silences_the_scan() {
        let om = engine();
        let findings = om
            .scan_opportunities(
                "dropped",
                &ScanConfig {
                    min_z: 1e9,
                    ..ScanConfig::default()
                },
            )
            .unwrap();
        assert!(findings.is_empty());
    }

    #[test]
    fn unknown_class_rejected() {
        let om = engine();
        assert!(om
            .scan_opportunities("bogus", &ScanConfig::default())
            .is_err());
    }
}
