#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation.
#
#   ./scripts/run_experiments.sh            # scaled-down (seconds)
#   OM_FULL=1 ./scripts/run_experiments.sh  # the paper's sizes (minutes)
#
# Results are written to experiments_out/ alongside stdout.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=experiments_out
mkdir -p "$OUT_DIR"

cargo build --release -p om-bench --bins

run() {
    local name="$1"
    echo "=== $name ==="
    "./target/release/$name" | tee "$OUT_DIR/$name.txt"
    echo
}

run exp_table1        # Table I  — z values
run exp_boundary      # Figs 2/4 — measure boundary situations
run exp_fig9          # Fig 9    — comparison time vs attributes (linear)
run exp_fig10         # Fig 10   — cube generation vs attributes (quadratic)
run exp_fig11         # Fig 11   — cube generation vs records (linear)
run exp_recovery      # Sec V-B  — case-study recovery + confound ablation
run exp_property_tau  # Sec IV-C — tau sweep
run exp_drill         # extension — nested-cause drill-down recovery

echo "All experiments done; outputs in $OUT_DIR/."
