#!/usr/bin/env bash
# Full local CI: release build, tests, clippy with warnings denied.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (root package + opmap)"
# The root `cargo build` covers only the root package; the cluster
# smokes below run target/release/opmap, so build it explicitly or
# they silently exercise a stale binary.
cargo build --release
cargo build --release -p om-cli

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p om-server --features failpoints -q (chaos suite)"
cargo test -p om-server --features failpoints -q

echo "==> cargo test -p om-ingest --features failpoints -q (ingest recovery + snapshot consistency)"
cargo test -p om-ingest --features failpoints -q

echo "==> cargo test -p om-exec --test determinism -q (parallel == serial, byte-for-byte)"
cargo test -p om-exec --test determinism -q

echo "==> cargo test -p om-cluster --features failpoints -q (fault-tolerance suite incl. hedging + deadline)"
cargo test -p om-cluster --features failpoints -q

echo "==> om-lint fixtures (check self-test corpus; debug + release)"
# Both build configs: the interprocedural fixpoint must behave the same
# with and without debug assertions/overflow checks.
cargo run -q -p om-lint -- fixtures
cargo run -q --release -p om-lint -- fixtures

echo "==> om-lint check (workspace invariants; JSON artifact in target/; 30s budget)"
# The JSON dump always lands (artifact even on failure); the plain run
# gates the script with readable findings. The wall-clock budget keeps
# the call-graph + effect-summary pass from quietly becoming the slow
# part of CI as the workspace grows.
lint_start=$(date +%s)
cargo run -q -p om-lint -- check --json > target/om-lint.json || true
cargo run -q -p om-lint -- check
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 30 ]; then
    echo "om-lint check exceeded its 30s wall-clock budget (took ${lint_elapsed}s)" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p om-server --features failpoints --all-targets -- -D warnings"
cargo clippy -p om-server --features failpoints --all-targets -- -D warnings

echo "==> cargo clippy -p om-ingest --features failpoints --all-targets -- -D warnings"
cargo clippy -p om-ingest --features failpoints --all-targets -- -D warnings

echo "==> cargo clippy -p om-exec --features failpoints --all-targets -- -D warnings"
cargo clippy -p om-exec --features failpoints --all-targets -- -D warnings

echo "==> cargo clippy -p om-api --all-targets -- -D warnings"
cargo clippy -p om-api --all-targets -- -D warnings

echo "==> cargo clippy -p om-cluster --all-targets -- -D warnings (both feature configs)"
cargo clippy -p om-cluster --all-targets -- -D warnings
cargo clippy -p om-cluster --features failpoints --all-targets -- -D warnings

echo "==> cargo clippy -p om-cli --features failpoints --all-targets -- -D warnings"
cargo clippy -p om-cli --features failpoints --all-targets -- -D warnings

echo "==> cargo clippy -p om-explore --all-targets -- -D warnings (both feature configs)"
cargo clippy -p om-explore --all-targets -- -D warnings
cargo clippy -p om-explore --features failpoints --all-targets -- -D warnings

echo "==> ingest_throughput bench (smoke)"
OM_BENCH_SMOKE=1 cargo bench -p om-bench --bench ingest_throughput

echo "==> rank_parallel bench (smoke)"
OM_BENCH_SMOKE=1 cargo bench -p om-bench --bench rank_parallel

echo "==> batch_drill bench (smoke)"
OM_BENCH_SMOKE=1 cargo bench -p om-bench --bench batch_drill

echo "==> cluster loopback smoke (2 shards, byte-identity vs single node, chaos + ingest)"
# Spawns 2 real shard processes on ephemeral ports, byte-compares every
# coordinator response against a single-node server over the union,
# kills + WAL-revives a shard mid-load, and checks post-ingest identity.
target/release/opmap cluster --shards 2 --records 6000 --requests 200 \
  --verify --chaos --ingest --bench-out target/cluster-smoke.json
cat target/cluster-smoke.json

echo "==> cluster loopback smoke (4 shards, byte-identity incl. concurrent ingest)"
target/release/opmap cluster --shards 4 --records 6000 --requests 200 \
  --verify --ingest

echo "==> replicated cluster chaos smoke (2 partitions x 2 replicas)"
# Kills the preferred replica of every partition mid-load (zero 5xx
# expected under replication), WAL-revives them, proves whole-partition
# loss degrades into an allow_partial coverage envelope, and ends with
# byte-identity against a single node over the union.
target/release/opmap cluster --shards 2 --replicas 2 --records 6000 \
  --requests 200 --verify --chaos --ingest \
  --bench-out target/cluster-replicated-smoke.json
cat target/cluster-replicated-smoke.json

echo "==> replicated chaos smoke under failpoints (delayed store fetches)"
# The failpoints build config must hold the same guarantees while every
# shard's store handler is slowed; exercises retry + deadline paths.
OM_FAILPOINTS="server.internal-store=delay:5" \
  cargo run -q -p om-cli --features failpoints -- cluster \
  --shards 2 --replicas 2 --records 4000 --requests 120 \
  --verify --chaos --ingest

echo "==> cluster_loopback bench (smoke)"
# Absolute path: cargo runs the bench with the package dir as CWD.
OM_BENCH_SMOKE=1 OM_BENCH_OUT="$PWD/target/BENCH_7.smoke.json" \
  cargo bench -p om-bench --bench cluster_loopback

echo "==> explore_throughput bench (smoke: memoized explore_compare must beat k drills)"
OM_BENCH_SMOKE=1 OM_BENCH_OUT="$PWD/target/BENCH_8.smoke.json" \
  cargo bench -p om-bench --bench explore_throughput

echo "==> kernel_counting bench (smoke: bitmap kernel byte-identical to record walk)"
# The 3x speedup floor only arms outside smoke mode on >=8-core hosts;
# the smoke run still asserts byte-identical ranked output.
OM_BENCH_SMOKE=1 cargo bench -p om-bench --bench kernel_counting

echo "==> om-bench compare smoke (significance-gated perf diff over the committed artifacts)"
# Self-diffs must parse the real artifacts and exit 0; the regression
# gate itself (exit 1 on a significant drop) is covered by the tool's
# unit tests in the workspace pass above.
cargo run -q -p om-bench --bin compare -- BENCH_7.json BENCH_7.json
cargo run -q -p om-bench --bin compare -- BENCH_8.json BENCH_8.json

echo "==> om-bench compare (kernel PR: explore/drill latency must not regress vs BENCH_8)"
# BENCH_9.json is the same explore_throughput artifact regenerated after
# the counting-kernel rewrite of the drill path; *_ms rises >10% fail.
cargo run -q -p om-bench --bin compare -- BENCH_8.json BENCH_9.json

echo "==> ci OK"
