#!/usr/bin/env bash
# Full local CI: release build, tests, clippy with warnings denied.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p om-server --features failpoints -q (chaos suite)"
cargo test -p om-server --features failpoints -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p om-server --features failpoints --all-targets -- -D warnings"
cargo clippy -p om-server --features failpoints --all-targets -- -D warnings

echo "==> ci OK"
