//! Statistical recovery: across many independently seeded datasets, the
//! paper's measure must put the planted cause first essentially always,
//! and beat the naive baselines on the confound scenario.

use opportunity_map::compare::baselines::{
    AbsConfDiffRanker, AttributeRanker, OmRanker,
};
use opportunity_map::compare::{CompareConfig, ComparisonSpec, IntervalMethod};
use opportunity_map::cube::{CubeStore, StoreBuildOptions};
use opportunity_map::synth::{generate_call_log, CallLogConfig, Effect};

/// Build a *proportional confound* scenario: ph2 is uniformly worse than
/// ph1 (a main effect only), and one attribute (`LocationType=rural`)
/// raises drops for BOTH phones. A correct comparator finds nothing to
/// blame (the Fig. 2(A) situation); a naive |Δconfidence| ranker blames
/// the common cause.
fn confound_scenario(seed: u64) -> (opportunity_map::data::Dataset, ComparisonSpec) {
    let ds = generate_call_log(&CallLogConfig {
        n_records: 60_000,
        seed,
        effects: vec![
            Effect::value("PhoneModel", "ph2", "dropped", 1.0),
            Effect::value("LocationType", "rural", "dropped", 1.5),
        ],
        ..CallLogConfig::default()
    });
    let s = ds.schema();
    let attr = s.attr_index("PhoneModel").unwrap();
    let spec = ComparisonSpec {
        attr,
        value_1: s.attribute(attr).domain().get("ph1").unwrap(),
        value_2: s.attribute(attr).domain().get("ph2").unwrap(),
        class: s.class().domain().get("dropped").unwrap(),
    };
    (ds, spec)
}

/// The planted-interaction scenario of the case study.
fn interaction_scenario(seed: u64) -> (opportunity_map::data::Dataset, ComparisonSpec) {
    let ds = generate_call_log(&CallLogConfig {
        n_records: 60_000,
        seed,
        effects: vec![
            Effect::value("PhoneModel", "ph2", "dropped", 0.35),
            Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 2.2),
            Effect::value("NetworkLoad", "high", "dropped", 0.8),
        ],
        ..CallLogConfig::default()
    });
    let s = ds.schema();
    let attr = s.attr_index("PhoneModel").unwrap();
    let spec = ComparisonSpec {
        attr,
        value_1: s.attribute(attr).domain().get("ph1").unwrap(),
        value_2: s.attribute(attr).domain().get("ph2").unwrap(),
        class: s.class().domain().get("dropped").unwrap(),
    };
    (ds, spec)
}

#[test]
fn om_measure_recovers_interaction_across_trials() {
    let ranker = OmRanker(CompareConfig::default());
    let mut hits = 0;
    let trials = 8;
    for seed in 0..trials {
        let (ds, spec) = interaction_scenario(1000 + seed);
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let ranking = ranker.rank(&store, &spec).unwrap();
        if ranking[0].attr_name == "TimeOfCall" {
            hits += 1;
        }
    }
    assert!(hits >= trials - 1, "recovered {hits}/{trials}");
}

#[test]
fn om_measure_is_quiet_on_pure_confound() {
    // With only a proportional main effect + common cause, no attribute
    // truly distinguishes the phones: the top normalized score must be
    // tiny compared to the interaction scenario's.
    let ranker = OmRanker(CompareConfig {
        interval: IntervalMethod::paper_default(),
        ..CompareConfig::default()
    });

    let (ds, spec) = confound_scenario(500);
    let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
    let quiet = ranker.rank(&store, &spec).unwrap();

    let (ds2, spec2) = interaction_scenario(501);
    let store2 = CubeStore::build(&ds2, &StoreBuildOptions::default()).unwrap();
    let loud = ranker.rank(&store2, &spec2).unwrap();

    assert!(
        loud[0].score > 10.0 * quiet[0].score.max(1e-9),
        "interaction top {} vs confound top {}",
        loud[0].score,
        quiet[0].score
    );
}

#[test]
fn naive_diff_ranker_is_fooled_by_the_confound() {
    // |Δconfidence| ignores the expected ratio: under a big uniform main
    // effect every attribute looks "different", so its top score on the
    // confound scenario stays comparable to its interaction-scenario one.
    // This contrast justifies the paper's F_k formulation.
    let naive = AbsConfDiffRanker;

    let (ds, spec) = confound_scenario(600);
    let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
    let confound_top = naive.rank(&store, &spec).unwrap()[0].score;

    let (ds2, spec2) = interaction_scenario(601);
    let store2 = CubeStore::build(&ds2, &StoreBuildOptions::default()).unwrap();
    let interaction_top = naive.rank(&store2, &spec2).unwrap()[0].score;

    // The naive ranker CANNOT separate the two regimes the way the OM
    // measure does (>10x): its scores are within a small factor.
    assert!(
        interaction_top < 10.0 * confound_top,
        "naive separation unexpectedly large: {interaction_top} vs {confound_top}"
    );
}

#[test]
fn ci_ablation_reduces_false_positives_on_null_data() {
    // Null scenario: NO planted effects at all; any positive score is a
    // false positive. The CI-adjusted measure must report (much) smaller
    // top scores than the unadjusted one.
    let mut raw_top = 0.0f64;
    let mut adj_top = 0.0f64;
    for seed in 0..5 {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 30_000,
            seed: 2000 + seed,
            effects: vec![],
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: 0,
            value_2: 1,
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let raw = OmRanker(CompareConfig {
            interval: IntervalMethod::None,
            ..CompareConfig::default()
        })
        .rank(&store, &spec)
        .unwrap();
        let adj = OmRanker(CompareConfig::default()).rank(&store, &spec).unwrap();
        raw_top += raw[0].score;
        adj_top += adj[0].score;
    }
    assert!(
        adj_top < raw_top * 0.5,
        "CI adjustment did not reduce null-data noise: raw {raw_top}, adjusted {adj_top}"
    );
}
