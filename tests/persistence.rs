//! Persistence integration: datasets, cubes and sessions survive the
//! round trip, and a reloaded session reproduces the same analysis.

use opportunity_map::cube::persist::{decode_cube, encode_cube};
use opportunity_map::cube::{build_cube, CubeStore, StoreBuildOptions};
use opportunity_map::data::persist::{decode_dataset, encode_dataset};
use opportunity_map::engine::{EngineConfig, OpportunityMap, Session};
use opportunity_map::synth::{generate_call_log, paper_scenario, CallLogConfig};

#[test]
fn dataset_round_trip_preserves_analysis() {
    let (ds, truth) = paper_scenario(30_000, 8);
    let restored = decode_dataset(encode_dataset(&ds)).unwrap();
    assert_eq!(restored, ds);

    let a = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
    let b = OpportunityMap::build(restored, EngineConfig::default()).unwrap();
    let ra = a
        .run_compare_by_name("PhoneModel", "ph1", "ph2", &truth.target_class, a.exec_ctx(None))
        .unwrap();
    let rb = b
        .run_compare_by_name("PhoneModel", "ph1", "ph2", &truth.target_class, b.exec_ctx(None))
        .unwrap();
    assert_eq!(ra, rb, "identical data must give identical comparisons");
}

#[test]
fn cube_round_trip_through_disk() {
    let ds = generate_call_log(&CallLogConfig {
        n_records: 5_000,
        ..CallLogConfig::default()
    });
    let s = ds.schema();
    let phone = s.attr_index("PhoneModel").unwrap();
    let time = s.attr_index("TimeOfCall").unwrap();
    let cube = build_cube(&ds, &[phone, time]).unwrap();

    let dir = std::env::temp_dir().join("om-persist-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pair.omrc");
    std::fs::write(&path, encode_cube(&cube).unwrap()).unwrap();
    let raw = std::fs::read(&path).unwrap();
    let restored = decode_cube(bytes::Bytes::from(raw)).unwrap();
    assert_eq!(restored, cube);
    std::fs::remove_file(&path).ok();
}

#[test]
fn session_reload_reproduces_comparison() {
    let (ds, truth) = paper_scenario(30_000, 9);
    let mut session = Session::new(ds);
    session.note("first pass");

    let dir = std::env::temp_dir().join("om-persist-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("analysis.omss");
    session.save(&path).unwrap();

    let reloaded = Session::load(&path).unwrap();
    assert_eq!(reloaded.log, vec!["first pass".to_string()]);
    let om = reloaded.open_engine(EngineConfig::default()).unwrap();
    let result = om
        .run_compare_by_name("PhoneModel", "ph1", "ph2", &truth.target_class, om.exec_ctx(None))
        .unwrap();
    assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_artifacts_rejected_not_panicking() {
    let ds = generate_call_log(&CallLogConfig {
        n_records: 500,
        ..CallLogConfig::default()
    });
    let mut ds_bytes = encode_dataset(&ds).to_vec();
    // Flip the magic and a middle byte.
    ds_bytes[0] ^= 0xff;
    assert!(decode_dataset(bytes::Bytes::from(ds_bytes.clone())).is_err());
    ds_bytes[0] ^= 0xff;
    let mid = ds_bytes.len() / 2;
    ds_bytes.truncate(mid);
    assert!(decode_dataset(bytes::Bytes::from(ds_bytes)).is_err());

    let cube = build_cube(&ds, &[0]).unwrap();
    let mut cube_bytes = encode_cube(&cube).unwrap().to_vec();
    cube_bytes.truncate(cube_bytes.len() / 3);
    assert!(decode_cube(bytes::Bytes::from(cube_bytes)).is_err());
}

#[test]
fn store_rebuild_after_reload_is_identical() {
    let ds = generate_call_log(&CallLogConfig {
        n_records: 4_000,
        n_extra_attrs: 0,
        ..CallLogConfig::default()
    });
    let restored = decode_dataset(encode_dataset(&ds)).unwrap();
    let a = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
    let b = CubeStore::build(&restored, &StoreBuildOptions::default()).unwrap();
    assert_eq!(a.attrs(), b.attrs());
    for &i in a.attrs() {
        assert_eq!(*a.one_dim(i).unwrap(), *b.one_dim(i).unwrap());
    }
}
