//! Cross-crate consistency: the CAR miner, the rule cubes, and the
//! comparator must all agree on counts and confidences, because they are
//! different views of the same rule space.

use opportunity_map::car::{mine, MinerConfig};
use opportunity_map::cube::olap::slice;
use opportunity_map::cube::{build_cube, CubeStore, StoreBuildOptions};
use opportunity_map::synth::{generate_call_log, generate_scaleup, CallLogConfig, ScaleUpConfig};

#[test]
fn miner_and_cubes_agree_on_every_rule() {
    let ds = generate_scaleup(&ScaleUpConfig {
        n_attrs: 4,
        n_records: 5_000,
        seed: 17,
        ..ScaleUpConfig::default()
    });
    let rules = mine(
        &ds,
        &MinerConfig {
            min_support: 0.0,
            min_confidence: 0.0,
            max_conditions: 2,
            attrs: None,
        },
    )
    .unwrap();
    assert!(!rules.is_empty());
    for r in &rules {
        match r.conditions.len() {
            1 => {
                let cube = build_cube(&ds, &[r.conditions[0].attr]).unwrap();
                assert_eq!(
                    cube.count(&[r.conditions[0].value], r.class).unwrap(),
                    r.support_count
                );
                assert_eq!(
                    cube.cell_total(&[r.conditions[0].value]).unwrap(),
                    r.cond_count
                );
            }
            2 => {
                let cube =
                    build_cube(&ds, &[r.conditions[0].attr, r.conditions[1].attr]).unwrap();
                let coords = [r.conditions[0].value, r.conditions[1].value];
                assert_eq!(cube.count(&coords, r.class).unwrap(), r.support_count);
                assert_eq!(cube.cell_total(&coords).unwrap(), r.cond_count);
            }
            n => panic!("unexpected rule length {n}"),
        }
    }
}

#[test]
fn store_cubes_agree_with_sub_population_counting() {
    // Slicing the pair cube at a phone model must reproduce exactly the
    // counts of the materialized sub-population dataset.
    let ds = generate_call_log(&CallLogConfig {
        n_records: 20_000,
        n_extra_attrs: 1,
        ..CallLogConfig::default()
    });
    let s = ds.schema();
    let phone = s.attr_index("PhoneModel").unwrap();
    let time = s.attr_index("TimeOfCall").unwrap();
    let store = CubeStore::build(
        &ds,
        &StoreBuildOptions {
            attrs: Some(vec![phone, time]),
            n_threads: 1,
            ..Default::default()
        },
    )
    .unwrap();

    let pair = store.pair(phone, time).unwrap();
    let phone_dim = pair
        .dims()
        .iter()
        .position(|d| d.attr_index == phone)
        .unwrap();

    for model in 0..s.attribute(phone).cardinality() as u32 {
        let sliced = slice(&pair, phone_dim, model).unwrap();
        let sub = ds.sub_population(phone, model).unwrap();
        assert_eq!(sliced.total(), sub.n_rows() as u64);
        // Per-time-of-day class counts must match.
        let sub_time = sub.column(time).as_categorical().unwrap();
        let sub_class = sub.class_values();
        for t in 0..s.attribute(time).cardinality() as u32 {
            for c in 0..s.n_classes() as u32 {
                let manual = (0..sub.n_rows())
                    .filter(|&r| sub_time[r] == t && sub_class[r] == c)
                    .count() as u64;
                assert_eq!(sliced.count(&[t], c).unwrap(), manual);
            }
        }
    }
}

#[test]
fn confidence_equation_one_holds_everywhere() {
    // Eq. (1): conf = sup(X, c) / Σ_j sup(X, c_j), verified over a full
    // pair cube.
    let ds = generate_scaleup(&ScaleUpConfig {
        n_attrs: 3,
        n_records: 3_000,
        seed: 23,
        ..ScaleUpConfig::default()
    });
    let cube = build_cube(&ds, &[0, 2]).unwrap();
    for (coords, class, count) in cube.iter_cells() {
        let denom = cube.cell_total(&coords).unwrap();
        match cube.confidence(&coords, class).unwrap() {
            Some(cf) => {
                assert!(denom > 0);
                assert!((cf - count as f64 / denom as f64).abs() < 1e-12);
            }
            None => assert_eq!(denom, 0),
        }
    }
}

#[test]
fn lazy_and_eager_stores_identical() {
    use std::sync::Arc;
    let ds = generate_scaleup(&ScaleUpConfig {
        n_attrs: 5,
        n_records: 2_000,
        seed: 31,
        ..ScaleUpConfig::default()
    });
    let eager = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
    let lazy = CubeStore::build_lazy(Arc::new(ds), &StoreBuildOptions::default()).unwrap();
    for i in 0..5 {
        for j in (i + 1)..5 {
            assert_eq!(*eager.pair(i, j).unwrap(), *lazy.pair(i, j).unwrap());
        }
    }
}
