//! Month-over-month regression detection (the release_regression example,
//! pinned as a test): the comparator must localize a regression planted in
//! one batch when the batch id is modeled as an ordinary attribute, and
//! merged per-batch cube stores must equal a monolithic build.

use opportunity_map::cube::{CubeStore, StoreBuildOptions};
use opportunity_map::data::{Attribute, Column, Dataset, Domain, Schema};
use opportunity_map::engine::{EngineConfig, OpportunityMap};
use opportunity_map::synth::{generate_call_log, CallLogConfig, Effect};

fn months() -> (Dataset, Dataset) {
    let may = generate_call_log(&CallLogConfig {
        n_records: 40_000,
        seed: 601,
        effects: vec![],
        ..CallLogConfig::default()
    });
    let june = generate_call_log(&CallLogConfig {
        n_records: 40_000,
        seed: 602,
        effects: vec![Effect::value("MovementSpeed", "driving", "dropped", 1.8)],
        ..CallLogConfig::default()
    });
    (may, june)
}

fn stack(may: &Dataset, june: &Dataset) -> Dataset {
    let schema = may.schema();
    let mut attributes: Vec<Attribute> = schema.attributes().to_vec();
    let month_idx = attributes.len() - 1;
    attributes.insert(
        month_idx,
        Attribute::categorical("Month", Domain::from_labels(["may", "june"])),
    );
    let class_idx = attributes.len() - 1;
    let stacked_schema = Schema::new(attributes, class_idx).unwrap();
    let mut columns: Vec<Column> = Vec::new();
    for i in 0..schema.n_attributes() {
        let mut col = may.column(i).clone();
        col.extend_from(june.column(i));
        columns.push(col);
    }
    let month_col: Vec<u32> = std::iter::repeat_n(0u32, may.n_rows())
        .chain(std::iter::repeat_n(1u32, june.n_rows()))
        .collect();
    columns.insert(month_idx, Column::Categorical(month_col));
    Dataset::from_columns(stacked_schema, columns).unwrap()
}

#[test]
fn regression_localized_to_movement_speed() {
    let (may, june) = months();
    let om = OpportunityMap::build(stack(&may, &june), EngineConfig::default()).unwrap();
    let result = om
        .run_compare_by_name("Month", "may", "june", "dropped", om.exec_ctx(None))
        .unwrap();
    let top = result.top().unwrap();
    assert_eq!(top.attr_name, "MovementSpeed");
    assert_eq!(top.top_values()[0].label, "driving");
    // All attributes the regression does not touch must score ~0.
    for s in result.ranked.iter().skip(1) {
        assert!(
            s.normalized < 0.05,
            "{} unexpectedly scored {:.3}",
            s.attr_name,
            s.normalized
        );
    }
}

#[test]
fn merged_monthly_stores_equal_monolithic_build() {
    let (may, june) = months();
    let attrs: Vec<usize> = may
        .schema()
        .non_class_indices()
        .into_iter()
        .filter(|&i| may.schema().attribute(i).is_categorical())
        .collect();
    let opts = StoreBuildOptions {
        attrs: Some(attrs),
        n_threads: 0,
        ..Default::default()
    };
    let merged = CubeStore::build(&may, &opts)
        .unwrap()
        .merge(&CubeStore::build(&june, &opts).unwrap())
        .unwrap();

    let mut all = may.clone();
    all.append(&june).unwrap();
    let direct = CubeStore::build(&all, &opts).unwrap();

    assert_eq!(merged.total_records(), direct.total_records());
    for &i in direct.attrs() {
        assert_eq!(*merged.one_dim(i).unwrap(), *direct.one_dim(i).unwrap());
    }
    let a = direct.attrs()[0];
    let b = direct.attrs()[1];
    assert_eq!(*merged.pair(a, b).unwrap(), *direct.pair(a, b).unwrap());
}
