//! End-to-end pipeline tests across all crates: data → discretize → cubes
//! → comparator → views, on all three synthetic domains.

use opportunity_map::engine::{EngineConfig, OpportunityMap};
use opportunity_map::synth::domains::{manufacturing_quality, network_diagnostics};
use opportunity_map::synth::{paper_scenario, GroundTruth};

fn run_scenario(
    dataset: opportunity_map::data::Dataset,
    truth: &GroundTruth,
) -> opportunity_map::compare::ComparisonResult {
    let om = OpportunityMap::build(dataset, EngineConfig::default()).expect("engine builds");
    om.run_compare_by_name(&truth.compare_attr,
        &truth.baseline_value,
        &truth.target_value,
        &truth.target_class, om.exec_ctx(None))
    .expect("comparison runs")
}

#[test]
fn call_log_scenario_recovers_planted_cause() {
    let (ds, truth) = paper_scenario(80_000, 1);
    let result = run_scenario(ds, &truth);
    assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
    assert_eq!(
        result.top().unwrap().top_values()[0].label,
        truth.expected_top_value
    );
    for u in &truth.uninformative_attrs {
        assert!(result.rank_of(u).unwrap() > 0, "{u} must not outrank the cause");
    }
    for p in &truth.property_attrs {
        assert!(result.property_attrs.iter().any(|s| &s.attr_name == p));
    }
}

#[test]
fn network_scenario_recovers_planted_cause() {
    let (ds, truth) = network_diagnostics(80_000, 2);
    let result = run_scenario(ds, &truth);
    assert_eq!(
        result.top().unwrap().attr_name,
        truth.expected_top_attr,
        "ranking: {:?}",
        result
            .ranked
            .iter()
            .map(|s| (&s.attr_name, s.score))
            .collect::<Vec<_>>()
    );
}

#[test]
fn manufacturing_scenario_recovers_planted_cause() {
    let (ds, truth) = manufacturing_quality(80_000, 3);
    let result = run_scenario(ds, &truth);
    assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
    for u in &truth.uninformative_attrs {
        assert!(result.rank_of(u).unwrap() > 0);
    }
}

#[test]
fn recovery_stable_across_seeds() {
    // The case study must not hinge on one lucky seed.
    let mut hits = 0;
    for seed in 100..110 {
        let (ds, truth) = paper_scenario(40_000, seed);
        let result = run_scenario(ds, &truth);
        if result.top().unwrap().attr_name == truth.expected_top_attr {
            hits += 1;
        }
    }
    assert!(hits >= 9, "recovered only {hits}/10 seeds");
}

#[test]
fn views_render_end_to_end() {
    let (ds, _) = paper_scenario(20_000, 4);
    let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
    let overall = om.overall_view(&Default::default());
    assert!(overall.lines().count() >= 4);
    let detailed = om.detailed_view("TimeOfCall", &Default::default()).unwrap();
    assert!(detailed.contains("morning"));
    // Discretized continuous attribute renders with interval labels.
    let signal = om.detailed_view("SignalStrength", &Default::default()).unwrap();
    assert!(signal.contains("inf"), "{signal}");
}

#[test]
fn comparison_independent_of_dataset_size_given_same_rates() {
    // The comparator only reads cubes; duplicating the dataset doubles
    // counts but must keep all scores exactly proportional (M doubles
    // with N_2k, normalized stays equal) and the ranking identical —
    // modulo the CI adjustment which *tightens* with more data, so run
    // without intervals for exactness.
    use opportunity_map::compare::{CompareConfig, Comparator, ComparisonSpec, IntervalMethod};
    use opportunity_map::cube::{CubeStore, StoreBuildOptions};
    use opportunity_map::data::sample::duplicate;

    let (ds, truth) = paper_scenario(20_000, 5);
    let doubled = duplicate(&ds, 2).unwrap();
    let config = CompareConfig {
        interval: IntervalMethod::None,
        ..CompareConfig::default()
    };
    let spec_of = |ds: &opportunity_map::data::Dataset| {
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        }
    };
    let store_a = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
    let store_b = CubeStore::build(&doubled, &StoreBuildOptions::default()).unwrap();
    let a = Comparator::with_config(&store_a, config.clone())
        .compare(&spec_of(&ds))
        .unwrap();
    let b = Comparator::with_config(&store_b, config)
        .compare(&spec_of(&doubled))
        .unwrap();
    assert_eq!(
        a.ranked.iter().map(|s| s.attr).collect::<Vec<_>>(),
        b.ranked.iter().map(|s| s.attr).collect::<Vec<_>>()
    );
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert!((y.score - 2.0 * x.score).abs() < 1e-6, "{}: {} vs {}", x.attr_name, x.score, y.score);
        assert!((y.normalized - x.normalized).abs() < 1e-9);
    }
}
