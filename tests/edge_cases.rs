//! Failure injection and degenerate inputs through the full engine:
//! nothing here should panic, and errors must be descriptive.

use opportunity_map::data::{Cell, DatasetBuilder};
use opportunity_map::engine::{EngineConfig, OpportunityMap};

#[test]
fn single_attribute_dataset() {
    let mut b = DatasetBuilder::new().categorical("A").class("C");
    for i in 0..100 {
        b.push_row(&[
            Cell::Str(if i % 2 == 0 { "x" } else { "y" }),
            Cell::Str(if i % 10 < 2 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let om = OpportunityMap::build(b.finish().unwrap(), EngineConfig::default()).unwrap();
    // Comparison needs at least one *other* attribute to rank: result is
    // an empty ranking, not a crash.
    let result = om.run_compare_by_name("A", "x", "y", "bad", om.exec_ctx(None)).unwrap();
    assert!(result.ranked.is_empty());
    assert!(result.top().is_none());
    // GI and views still work.
    let _ = om.run_general_impressions(om.exec_ctx(None)).expect("unlimited budget never trips");
    let _ = om.overall_view(&Default::default());
}

#[test]
fn class_value_never_occurs() {
    // Domain contains a class label with zero records (interned but unused).
    let mut b = DatasetBuilder::new().categorical("A").categorical("B").class("C");
    b.push_row(&[Cell::Str("a0"), Cell::Str("b0"), Cell::Str("ghost")]).unwrap();
    for i in 0..200 {
        b.push_row(&[
            Cell::Str(if i % 2 == 0 { "a0" } else { "a1" }),
            Cell::Str(if i % 3 == 0 { "b0" } else { "b1" }),
            Cell::Str(if i % 10 == 0 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let ds = b.finish().unwrap();
    let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
    // Comparing on the nearly-empty class: the sole ghost record makes one
    // sub-population confidence 0 ⇒ a clean error, not a panic.
    let r = om.run_compare_by_name("A", "a0", "a1", "ghost", om.exec_ctx(None));
    assert!(r.is_err());
    let msg = r.unwrap_err().to_string();
    assert!(msg.contains("never occurs") || msg.contains("ratio"), "{msg}");
}

#[test]
fn all_records_one_class() {
    let mut b = DatasetBuilder::new().categorical("A").categorical("B").class("C");
    for i in 0..100 {
        b.push_row(&[
            Cell::Str(if i % 2 == 0 { "x" } else { "y" }),
            Cell::Str("z"),
            Cell::Str("only"),
        ])
        .unwrap();
    }
    let om = OpportunityMap::build(b.finish().unwrap(), EngineConfig::default()).unwrap();
    // 100% confidence everywhere; comparison degenerates but must not panic.
    let result = om.run_compare_by_name("A", "x", "y", "only", om.exec_ctx(None)).unwrap();
    // cf1 == cf2 == 1.0 ⇒ ratio 1 ⇒ every F_k <= 0 ⇒ all scores 0.
    for s in &result.ranked {
        assert_eq!(s.score, 0.0);
    }
}

#[test]
fn huge_cardinality_attribute() {
    // 500 distinct values over 2000 records: wide cube, must stay correct.
    let mut b = DatasetBuilder::new().categorical("Id").categorical("B").class("C");
    let labels: Vec<String> = (0..500).map(|i| format!("v{i}")).collect();
    for i in 0..2000usize {
        b.push_row(&[
            Cell::Str(&labels[i % 500]),
            Cell::Str(if i % 2 == 0 { "b0" } else { "b1" }),
            Cell::Str(if i % 20 == 0 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let ds = b.finish().unwrap();
    let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
    assert_eq!(om.dataset().schema().attribute(0).cardinality(), 500);
    let _ = om.overall_view(&Default::default());
    // With collapsing the width becomes manageable.
    let mut b2 = DatasetBuilder::new().categorical("Id").categorical("B").class("C");
    for i in 0..2000usize {
        b2.push_row(&[
            Cell::Str(&labels[i % 500]),
            Cell::Str(if i % 2 == 0 { "b0" } else { "b1" }),
            Cell::Str(if i % 20 == 0 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let om2 = OpportunityMap::build(
        b2.finish().unwrap(),
        EngineConfig {
            collapse_min_count: Some(10),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(om2.dataset().schema().attribute(0).cardinality() <= 2);
}

#[test]
fn constant_continuous_attribute() {
    let mut b = DatasetBuilder::new()
        .categorical("A")
        .continuous("Flat")
        .class("C");
    for i in 0..100 {
        b.push_row(&[
            Cell::Str(if i % 2 == 0 { "x" } else { "y" }),
            Cell::Num(7.0),
            Cell::Str(if i % 5 == 0 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let om = OpportunityMap::build(b.finish().unwrap(), EngineConfig::default()).unwrap();
    // The flat attribute becomes a single-value categorical; comparisons
    // treat it as carrying no signal.
    let flat = om.attr_index("Flat").unwrap();
    assert_eq!(om.dataset().schema().attribute(flat).cardinality(), 1);
    let result = om.run_compare_by_name("A", "x", "y", "bad", om.exec_ctx(None)).unwrap();
    let flat_score = result
        .ranked
        .iter()
        .chain(&result.property_attrs)
        .find(|s| s.attr_name == "Flat")
        .unwrap();
    assert_eq!(flat_score.score.max(0.0), flat_score.score);
}

#[test]
fn all_nan_continuous_attribute() {
    let mut b = DatasetBuilder::new()
        .categorical("A")
        .continuous("Nan")
        .class("C");
    for i in 0..60 {
        b.push_row(&[
            Cell::Str(if i % 2 == 0 { "x" } else { "y" }),
            Cell::Num(f64::NAN),
            Cell::Str(if i % 4 < 2 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let om = OpportunityMap::build(b.finish().unwrap(), EngineConfig::default()).unwrap();
    let nan_attr = om.attr_index("Nan").unwrap();
    // Everything lands in the missing bin.
    let counts = om.dataset().value_counts(nan_attr).unwrap();
    assert_eq!(counts.iter().sum::<u64>(), 60);
    let _ = om.run_compare_by_name("A", "x", "y", "bad", om.exec_ctx(None)).unwrap();
}

#[test]
fn gi_report_renders_on_small_data() {
    let mut b = DatasetBuilder::new().categorical("A").categorical("B").class("C");
    for i in 0..300 {
        b.push_row(&[
            Cell::Str(["p", "q", "r"][i % 3]),
            Cell::Str(if i % 2 == 0 { "b0" } else { "b1" }),
            Cell::Str(if i % 6 == 0 { "bad" } else { "ok" }),
        ])
        .unwrap();
    }
    let om = OpportunityMap::build(b.finish().unwrap(), EngineConfig::default()).unwrap();
    let report = om.gi_report(5);
    assert!(report.contains("Trends"));
    assert!(report.contains("Exceptions"));
    assert!(report.contains("Interaction exceptions"));
    assert!(report.contains("Influential attributes"));
}
